// Command appgen generates, inspects and compiles synthetic evaluation apps.
// Inspection reports structure (screens, activities, functionalities), the
// method universe, crash sites, and a Globally-Sparse / Locally-Dense check
// of the ground-truth UI transition graph (the property Section 4.2's
// Theorem 1 relies on). It is also the scenario compiler: it validates,
// hashes and round-trips the versioned scenario files of internal/scenario.
//
// Usage:
//
//	appgen -app Zedge
//	appgen -name MyApp -seed 7 -subspaces 6   # generate a custom app
//	appgen -compile file.json                 # compile a scenario document
//	appgen -validate file.json                # validate, report all issues
//	appgen -hash file.json                    # print the canonical hash
//	appgen -emit Zedge                        # write a catalog app as a scenario
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"text/tabwriter"

	"taopt/internal/app"
	"taopt/internal/apps"
	"taopt/internal/cli"
	"taopt/internal/graph"
	"taopt/internal/scenario"
	"taopt/internal/ui"
)

var fatalf = cli.Fatalf("appgen")

func main() {
	var (
		appName   = flag.String("app", "", "inspect a catalog app (see cmd/taopt -list)")
		name      = flag.String("name", "", "generate a custom app with this name")
		seed      = flag.Int64("seed", 1, "generation seed for -name")
		subspaces = flag.Int("subspaces", 0, "functionalities for -name (0 = default)")
		screens   = flag.Int("screens", 0, "max screens per functionality for -name (0 = default)")

		compile  = flag.String("compile", "", "compile a scenario file and describe the result")
		validate = flag.String("validate", "", "validate a scenario file, reporting every issue")
		hashFile = flag.String("hash", "", "print a scenario file's canonical content hash")
		emit     = flag.String("emit", "", "emit a catalog app as a version-1 scenario document on stdout")
	)
	flag.Parse()

	switch {
	case *compile != "":
		compileCmd(*compile)
		return
	case *validate != "":
		validateCmd(*validate)
		return
	case *hashFile != "":
		hashCmd(*hashFile)
		return
	case *emit != "":
		emitCmd(*emit)
		return
	}

	var aut *app.App
	switch {
	case *appName != "":
		a, err := apps.Load(*appName)
		if err != nil {
			fatalf("%v", err)
		}
		aut = a
	case *name != "":
		spec := app.DefaultSpec(*name, *seed)
		if *subspaces > 0 {
			spec.Subspaces = *subspaces
		}
		if *screens > 0 {
			spec.ScreensMax = *screens
			if spec.ScreensMin > *screens {
				spec.ScreensMin = *screens
			}
		}
		aut = app.Generate(spec)
	default:
		aut = app.MotivatingExample()
	}

	inspect(aut)
}

// compileScenario reads and compiles one scenario file.
func compileScenario(path string) (*scenario.Compiled, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return scenario.Compile(data)
}

// compileCmd compiles a scenario file and summarises the compiled value.
func compileCmd(path string) {
	c, err := compileScenario(path)
	if err != nil {
		fatalf("%s: %v", path, err)
	}
	fmt.Printf("kind:   %s (schema v%d)\n", c.Kind, c.Version)
	fmt.Printf("name:   %s\n", c.Name)
	fmt.Printf("hash:   %s\n", c.Hash)
	switch {
	case c.App != nil:
		s := c.App.Spec
		fmt.Printf("app:    seed %d, %d functionalities, %d–%d screens, login %v\n",
			s.Seed, s.Subspaces, s.ScreensMin, s.ScreensMax, c.App.Login)
	case c.FaultPlan != nil:
		cfg := c.FaultPlan.Config
		fmt.Printf("faults: failure rate %g, %d context windows, enabled %v\n",
			cfg.FailureRate, len(cfg.Context), cfg.Enabled())
	case c.Campaign != nil:
		cc := c.Campaign
		fmt.Printf("grid:   %d catalog + %d inline apps × %d tools × %d settings, %d fault variants\n",
			len(cc.Apps), len(cc.InlineApps), len(cc.Tools), len(cc.Settings), len(cc.FaultGrid))
	case c.Run != nil:
		rs := c.Run
		appLabel := rs.AppName
		if rs.App != nil {
			appLabel = rs.App.Spec.Name + " (inline)"
		}
		fmt.Printf("run:    %s × %s × %s, seed %d, faults %v\n",
			appLabel, rs.Tool, rs.Setting, rs.Seed, rs.Faults != nil)
		fmt.Printf("key:    %s\n", rs.ConfigHash)
	}
}

// validateCmd validates a scenario file, printing every issue with its JSON
// path. Exit status 1 on any issue.
func validateCmd(path string) {
	if _, err := compileScenario(path); err != nil {
		fatalf("%s: %v", path, err)
	}
	fmt.Printf("%s: ok\n", path)
}

// hashCmd prints the canonical content hash of a scenario file in the
// conventional "<hash>  <path>" checksum shape. The file is compiled first:
// a hash of an invalid document would pin garbage.
func hashCmd(path string) {
	c, err := compileScenario(path)
	if err != nil {
		fatalf("%s: %v", path, err)
	}
	fmt.Printf("%s  %s\n", c.Hash, path)
}

// emitCmd writes a catalog app back out as a scenario document — the
// round-trip that generated the embedded catalog files.
func emitCmd(name string) {
	e, err := apps.Lookup(name)
	if err != nil {
		fatalf("%v", err)
	}
	out, err := scenario.EmitApp(&scenario.App{Spec: e.Spec, Login: e.Login})
	if err != nil {
		fatalf("%v", err)
	}
	os.Stdout.Write(out)
}

func inspect(a *app.App) {
	fmt.Printf("app:        %s %s\n", a.Name, a.Version)
	fmt.Printf("screens:    %d in %d functionalities (incl. hub)\n", len(a.Screens), a.Subspaces)
	fmt.Printf("methods:    %d (UI-reachable: %d)\n", a.MethodCount(), len(a.ReachableMethods()))
	fmt.Printf("activities: %d\n", len(a.Activities()))
	fmt.Printf("crashes:    %d planted sites\n", len(a.CrashSites))
	fmt.Printf("login:      %v\n", a.LoginRequired)

	// Screens per functionality and per activity.
	bySub := make(map[int]int)
	byAct := make(map[string]int)
	for _, s := range a.Screens {
		bySub[s.Subspace]++
		byAct[s.Activity]++
	}
	subs := make([]int, 0, len(bySub))
	for k := range bySub {
		subs = append(subs, k)
	}
	sort.Ints(subs)
	fmt.Println("\nfunctionality sizes:")
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	for _, k := range subs {
		label := fmt.Sprintf("functionality %d", k)
		if k == 0 {
			label = "hub"
		}
		fmt.Fprintf(tw, "  %s\t%d screens\n", label, bySub[k])
	}
	tw.Flush()

	// Activities shared across functionalities (what breaks ParaAim).
	actSubs := make(map[string]map[int]bool)
	for _, s := range a.Screens {
		if actSubs[s.Activity] == nil {
			actSubs[s.Activity] = make(map[int]bool)
		}
		actSubs[s.Activity][s.Subspace] = true
	}
	shared := 0
	for _, set := range actSubs {
		if len(set) > 1 {
			shared++
		}
	}
	fmt.Printf("\nactivities spanning >1 functionality: %d of %d\n", shared, len(actSubs))

	// Crash sites with their depth position — shallow sites fall to heavy
	// repetition, deep ones only to sustained exploration.
	fmt.Println("\ncrash sites:")
	blockOf := make(map[int][]int)
	for _, s := range a.Screens {
		blockOf[s.Subspace] = append(blockOf[s.Subspace], int(s.ID))
	}
	for _, s := range a.Screens {
		for w := range s.Widgets {
			if s.Widgets[w].CrashSite < 0 {
				continue
			}
			blk := blockOf[s.Subspace]
			pos := 0
			for p, id := range blk {
				if id == int(s.ID) {
					pos = p
				}
			}
			fmt.Printf("  site %-3d functionality %-2d depth %3.0f%%  trigger %.2f\n",
				s.Widgets[w].CrashSite, s.Subspace,
				100*float64(pos)/float64(len(blk)), s.Widgets[w].CrashProb)
		}
	}

	gsld(a)
}

// gsld builds the ground-truth stochastic transition graph (uniform action
// choice) and reports internal vs cross-functionality conductance — the
// GS-LD property of Section 4.2.
func gsld(a *app.App) {
	b := graph.NewBuilder()
	sigOf := make([]ui.Signature, len(a.Screens))
	for i := range a.Screens {
		sigOf[i] = a.Render(app.ScreenID(i), 0).Abstract()
	}
	for i, s := range a.Screens {
		for _, w := range s.Widgets {
			if w.Target >= 0 {
				b.Add(sigOf[i], sigOf[w.Target])
			}
		}
	}
	g := b.Graph()

	// Membership per functionality.
	members := make(map[int][]int)
	for i, s := range a.Screens {
		if v, ok := g.VertexOf(sigOf[i]); ok {
			members[s.Subspace] = append(members[s.Subspace], v)
		}
	}

	var maxCross, sumCross float64
	pairs := 0
	for s1, m1 := range members {
		for s2, m2 := range members {
			if s1 == 0 || s2 == 0 || s1 == s2 {
				continue // the hub couples to everything by design
			}
			c := g.ConductanceSets(m1, m2)
			sumCross += c
			pairs++
			if c > maxCross {
				maxCross = c
			}
		}
	}
	if pairs > 0 {
		fmt.Printf("\nGS-LD check (ground-truth graph, uniform action probabilities):\n")
		fmt.Printf("  cross-functionality conductance: mean %.4f, max %.4f over %d ordered pairs\n",
			sumCross/float64(pairs), maxCross, pairs)
		fmt.Printf("  (loosely coupled subspaces need these ≈ 0; Section 4.1)\n")
	}
}
