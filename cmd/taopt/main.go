// Command taopt runs one parallel-testing campaign on a synthetic evaluation
// app with a chosen tool and parallelization setting, and prints the run's
// headline measurements.
//
// Usage:
//
//	taopt -app Zedge -tool ape -setting taopt-duration -duration 60
//	taopt -app demo -tool monkey -setting baseline
//	taopt -app Zedge -tool ape -setting taopt-duration -faults 0.2
//	taopt -scenario my-app.json -tool ape -setting taopt-duration
//	taopt -app Zedge -faultplan outage.json -tool ape -setting taopt-duration
//	taopt -app Zedge -tool ape -setting taopt-duration -transport wire -wirelog run.wirelog
//	taopt -list
package main

import (
	"flag"

	"fmt"
	"io"
	"os"
	"strings"
	"text/tabwriter"

	"taopt/internal/app"
	"taopt/internal/apps"
	"taopt/internal/cli"
	"taopt/internal/core"
	"taopt/internal/export"
	"taopt/internal/faults"
	"taopt/internal/harness"
	"taopt/internal/report"
	"taopt/internal/scenario"
	"taopt/internal/sim"
	"taopt/internal/tools"
	"taopt/internal/ui"
)

func main() {
	var (
		appName   = flag.String("app", "demo", `evaluation app name from -list, or "demo" for the Figure 2 shopping app`)
		scenFile  = flag.String("scenario", "", "run the app defined by this scenario file (kind app) instead of -app")
		planFile  = flag.String("faultplan", "", "inject the fault plan defined by this scenario file (kind fault-plan)")
		tool      = flag.String("tool", "monkey", "testing tool: "+strings.Join(tools.Names(), ", "))
		setting   = flag.String("setting", "baseline", "baseline | taopt-duration | taopt-resource | activity-partition | pats | single-long")
		instances = flag.Int("instances", harness.DefaultInstances, "concurrent testing instances (d_max)")
		duration  = flag.Int("duration", 60, "wall-clock budget l_p in minutes")
		budget    = flag.Int("budget", 0, "machine-time budget in minutes (default instances × duration)")
		seed      = flag.Int64("seed", 1, "campaign seed")
		stagMin   = flag.Float64("stagnation", 0, "override stagnation window in minutes (0 = paper default)")
		faultRate = flag.Float64("faults", 0, "inject device-farm failures at this instance-failure rate (e.g. 0.2)")
		transport = flag.String("transport", "inline", "coordination transport: inline | wire (results are byte-identical)")
		wirelog   = flag.String("wirelog", "", "record the full coordination message log to this file (replay it with tracetool wirelog)")
		bintrace  = flag.String("bintrace", "", "stream the run in the compact binary trace format to this file (analyze with tracetool corpus)")
		exportTo  = flag.String("export", "", "write the full run (traces, crashes, subspaces) as JSON to this file")
		telemetry = flag.Bool("telemetry", false, "collect the coordinator's decision log and run metrics; prints a digest and adds the export's telemetry block")
		decisions = flag.String("decisions", "", "write the decision log as JSONL to this file (implies -telemetry)")
		traceOut  = flag.String("trace-out", "", "write a Chrome trace-event JSON (Perfetto-loadable) of the run to this file (implies -telemetry)")
		cpuProf   = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProf   = flag.String("memprofile", "", "write a pprof heap profile to this file")
		list      = flag.Bool("list", false, "list evaluation apps and exit")
		verbose   = flag.Bool("v", false, "print per-instance details and identified subspaces")
	)
	flag.Parse()

	stopProfiles, err := cli.StartProfiles(*cpuProf, *memProf)
	if err != nil {
		fatalf("%v", err)
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			fatalf("%v", err)
		}
	}()

	if *list {
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "APP\tVERSION\tCATEGORY\t#INST\tLOGIN\tMETHODS")
		for _, e := range apps.Entries() {
			a := apps.MustLoad(e.Spec.Name)
			login := ""
			if e.Login {
				login = "*"
			}
			fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%s\t%d\n",
				e.Spec.Name, e.Spec.Version, e.Spec.Category, e.Spec.Downloads, login, a.MethodCount())
		}
		w.Flush()
		return
	}

	var (
		aut      *app.App
		scenHash string
	)
	switch {
	case *scenFile != "":
		raw, err := os.ReadFile(*scenFile)
		if err != nil {
			fatalf("%v", err)
		}
		sa, err := scenario.CompileApp(raw)
		if err != nil {
			fatalf("%s: %v", *scenFile, err)
		}
		aut = sa.Generate()
		scenHash = sa.Hash
	case *appName == "demo":
		aut = app.MotivatingExample()
	default:
		var err error
		aut, err = apps.Load(*appName)
		if err != nil {
			fatalf("%v (use -list to see available apps)", err)
		}
		scenHash = apps.Hash(*appName)
	}

	st, err := harness.ParseSetting(*setting)
	if err != nil {
		fatalf("%v", err)
	}

	cfg := harness.RunConfig{
		App:           aut,
		Tool:          *tool,
		Setting:       st,
		Instances:     *instances,
		Duration:      sim.Duration(*duration) * sim.Duration(60e9),
		MachineBudget: sim.Duration(*budget) * sim.Duration(60e9),
		Seed:          *seed,
		ScenarioHash:  scenHash,
		Telemetry:     *telemetry || *decisions != "" || *traceOut != "",
	}
	if *planFile != "" && *faultRate > 0 {
		fatalf("-faultplan and -faults are exclusive (the plan file already fixes the fault mix)")
	}
	if *planFile != "" {
		raw, err := os.ReadFile(*planFile)
		if err != nil {
			fatalf("%v", err)
		}
		fp, err := scenario.CompileFaultPlan(raw)
		if err != nil {
			fatalf("%s: %v", *planFile, err)
		}
		fc := fp.Config
		cfg.Faults = &fc
	}
	if *faultRate > 0 {
		fc := faults.DefaultConfig(*faultRate)
		cfg.Faults = &fc
	}
	switch *transport {
	case "inline":
	case "wire":
		cfg.Transport = harness.TransportWire
	default:
		fatalf("unknown transport %q (want inline or wire)", *transport)
	}
	var wlog *os.File
	if *wirelog != "" {
		var err error
		if wlog, err = os.Create(*wirelog); err != nil {
			fatalf("%v", err)
		}
		cfg.WireLog = wlog
	}
	var btrace *os.File
	if *bintrace != "" {
		var err error
		if btrace, err = os.Create(*bintrace); err != nil {
			fatalf("%v", err)
		}
		cfg.BinTrace = btrace
	}
	if *stagMin > 0 {
		mode := core.DurationConstrained
		if st == harness.TaOPTResource {
			mode = core.ResourceConstrained
		}
		cc := core.DefaultConfig(mode)
		cc.Stagnation = sim.Duration(*stagMin * 60e9)
		cfg.CoreConfig = &cc
	}
	res, err := harness.Run(cfg)
	if err != nil {
		fatalf("%v", err)
	}
	if wlog != nil {
		if err := wlog.Close(); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("wire log:       %s\n", *wirelog)
	}
	if btrace != nil {
		if err := btrace.Close(); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("binary trace:   %s\n", *bintrace)
	}

	if *exportTo != "" {
		f, err := os.Create(*exportTo)
		if err != nil {
			fatalf("%v", err)
		}
		if err := export.FromResult(res).Write(f); err != nil {
			fatalf("exporting run: %v", err)
		}
		if err := f.Close(); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("exported:       %s\n", *exportTo)
	}
	if *decisions != "" {
		f, err := os.Create(*decisions)
		if err != nil {
			fatalf("%v", err)
		}
		if err := res.Telemetry.DecisionLog().WriteJSONL(f); err != nil {
			fatalf("writing decision log: %v", err)
		}
		if err := f.Close(); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("decision log:   %s (%d entries)\n", *decisions, res.Telemetry.DecisionLog().Len())
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatalf("%v", err)
		}
		tr := export.ChromeTrace(res)
		if err := tr.Write(f); err != nil {
			fatalf("writing trace: %v", err)
		}
		if err := f.Close(); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("chrome trace:   %s (%d events)\n", *traceOut, tr.Len())
	}

	printSummary(os.Stdout, aut, *tool, st, res)
	if *telemetry {
		if err := report.Telemetry(os.Stdout, res); err != nil {
			fatalf("%v", err)
		}
	}

	if *verbose {
		fmt.Println()
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "INSTANCE\tALLOCATED\tRELEASED\tMETHODS\tCRASHES\tTRANSITIONS")
		for _, inst := range res.Instances {
			fmt.Fprintf(w, "%d\t%v\t%v\t%d\t%d\t%d\n",
				inst.ID, inst.Allocated, inst.Released, inst.Methods.Count(), inst.Crashes.Unique(), inst.Trace.Len())
		}
		w.Flush()
		// Ground-truth mapping: which true functionality does each member
		// screen belong to? (Evaluation aid only; TaOPT never sees this.)
		truth := make(map[ui.Signature]int)
		depthOf := make(map[ui.Signature]float64) // position fraction within its functionality
		bySub := make(map[int][]int)
		for _, sc := range aut.Screens {
			bySub[sc.Subspace] = append(bySub[sc.Subspace], int(sc.ID))
		}
		for _, sc := range aut.Screens {
			sig := aut.Render(sc.ID, 0).Abstract()
			truth[sig] = sc.Subspace
			if sc.Subspace != 0 {
				blk := bySub[sc.Subspace]
				for pos, id := range blk {
					if id == int(sc.ID) {
						depthOf[sig] = float64(pos) / float64(len(blk))
					}
				}
			}
		}
		// Visit mass by depth decile (functionality screens only): shows
		// how deep each setting's exploration actually gets.
		var visits [10]int
		for sig, n := range res.UIOccurrences {
			d, ok := depthOf[sig]
			if !ok {
				continue
			}
			b := int(d * 10)
			if b > 9 {
				b = 9
			}
			visits[b] += n
		}
		fmt.Printf("depth decile visits:  %v\n", visits)
		for _, sub := range res.Subspaces {
			span := make(map[int]int)
			for m := range sub.Members {
				if gt, ok := truth[m]; ok {
					span[gt]++
				} else {
					span[-1]++
				}
			}
			fmt.Printf("subspace %d: entry=%v members=%d (initial %d) owner=%d found=%v span=%v\n",
				sub.ID, sub.Entry, len(sub.Members), sub.InitialMembers, sub.Owner, sub.FoundAt, span)
		}
	}
}

var fatalf = cli.Fatalf("taopt")

// printSummary writes the run's headline block. The scenario hash line
// repeats export v5's scenario_hash (and the service cache key's app
// component) so a terminal run correlates with exported results and taoptd
// cells; it is omitted for code-built apps, which have no document to name.
func printSummary(w io.Writer, aut *app.App, tool string, st harness.Setting, res *harness.RunResult) {
	fmt.Fprintf(w, "app:            %s (%d methods, %d screens)\n", aut.Name, aut.MethodCount(), len(aut.Screens))
	fmt.Fprintf(w, "tool:           %s\n", tool)
	fmt.Fprintf(w, "setting:        %s\n", st)
	if h := res.Config.ScenarioHash; h != "" {
		fmt.Fprintf(w, "scenario hash:  %s\n", h)
	}
	fmt.Fprintf(w, "wall used:      %v\n", res.WallUsed)
	fmt.Fprintf(w, "machine used:   %v\n", res.MachineUsed)
	fmt.Fprintf(w, "instances:      %d allocations\n", len(res.Instances))
	fmt.Fprintf(w, "coverage:       %d methods (%.1f%% of universe)\n",
		res.Union.Count(), 100*float64(res.Union.Count())/float64(aut.MethodCount()))
	fmt.Fprintf(w, "unique crashes: %d\n", res.UniqueCrashes)
	fmt.Fprintf(w, "distinct UIs:   %d (avg %.1f occurrences each)\n", len(res.UIOccurrences), res.UIOccurrenceAverage())
	if n := len(res.Timeline); n > 0 && res.Timeline[n-1].AJS > 0 {
		fmt.Fprintf(w, "final AJS:      %.3f\n", res.Timeline[n-1].AJS)
	}
	if len(res.Subspaces) > 0 {
		fmt.Fprintf(w, "subspaces:      %d identified\n", len(res.Subspaces))
	}
	if res.CoordinatorStats != nil {
		fmt.Fprintf(w, "coordinator:    %+v\n", *res.CoordinatorStats)
	}
	if res.Wire != nil {
		fmt.Fprintf(w, "wire frames:    %d up / %d down (%d + %d bytes, %d timeouts)\n",
			res.Wire.FramesUp, res.Wire.FramesDown, res.Wire.BytesUp, res.Wire.BytesDown, res.Wire.Timeouts)
	}
	if res.Transport.Injected() > 0 {
		fmt.Fprintf(w, "transport:      %+v\n", res.Transport)
		fmt.Fprintf(w, "failed leases:  %d (orphaned subspaces pending: %d)\n",
			res.FailedInstances, res.OrphansPending)
	}
}
