package main

import (
	"strings"
	"testing"

	"taopt/internal/app"
	"taopt/internal/apps"
	"taopt/internal/harness"
	"taopt/internal/sim"
)

// The stdout summary must surface the scenario hash export v5 stamps, so a
// terminal run correlates with exported results and taoptd cache keys.
func TestSummarySurfacesScenarioHash(t *testing.T) {
	aut := apps.MustLoad("Filters For Selfie")
	res, err := harness.Run(harness.RunConfig{
		App:          aut,
		Tool:         "monkey",
		Setting:      harness.TaOPTDuration,
		Duration:     6 * sim.Duration(60e9),
		Seed:         2,
		ScenarioHash: apps.Hash("Filters For Selfie"),
	})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	printSummary(&b, aut, "monkey", harness.TaOPTDuration, res)
	out := b.String()
	for _, want := range []string{
		"app:            Filters For Selfie",
		"tool:           monkey",
		"setting:        taopt-duration",
		"scenario hash:  " + apps.Hash("Filters For Selfie"),
		"unique crashes:",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
}

// Code-built apps have no scenario document; the hash line must disappear
// rather than print an empty value.
func TestSummaryOmitsHashForCodeBuiltApps(t *testing.T) {
	aut := app.MotivatingExample()
	res, err := harness.Run(harness.RunConfig{
		App:      aut,
		Tool:     "monkey",
		Setting:  harness.BaselineParallel,
		Duration: 6 * sim.Duration(60e9),
		Seed:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	printSummary(&b, aut, "monkey", harness.BaselineParallel, res)
	if strings.Contains(b.String(), "scenario hash:") {
		t.Fatalf("hash line printed without a scenario document:\n%s", b.String())
	}
}
