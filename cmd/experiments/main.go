// Command experiments regenerates the paper's tables and figures from
// simulated campaigns.
//
// Usage:
//
//	experiments -exp all                 # everything, full 18-app grid (slow)
//	experiments -exp all -workers 0      # same output, one campaign cell per CPU
//	experiments -exp table4 -apps AccuWeather,Zedge
//	experiments -exp fig5 -minutes 20    # scaled-down budgets
//
// Experiment names: fig3, table1, table2, fig5, fig6, table4, table5,
// table6, single, preserve, chaos, all.
//
//	experiments -exp chaos -apps Zedge -minutes 20   # fault-injection study
//	experiments -exp chaos -scenario grid.json       # scenario-defined fault grid
//	experiments -exp grid -scenario campaign.json    # scenario-defined campaign
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"

	"taopt/internal/apps"
	"taopt/internal/cli"
	"taopt/internal/core"
	"taopt/internal/export"
	"taopt/internal/faults"
	"taopt/internal/harness"
	"taopt/internal/report"
	"taopt/internal/scenario"
	"taopt/internal/sim"
)

// gridExperiment averages coverage / crashes / UI overlap / savings over
// several seeded campaigns and prints per-(tool, setting) deltas vs the
// baseline. It is the calibration instrument behind EXPERIMENTS.md; the
// paper tables come from the named experiments.
func gridExperiment(w io.Writer, cfg harness.CampaignConfig, seeds int, settings []harness.Setting) error {
	ms := harness.NewMultiSeed(cfg, seeds)
	return ms.Render(w, settings)
}

// ablateExperiment quantifies the design choices DESIGN.md calls out by
// re-running TaOPT's duration-constrained mode with each one disabled or
// reverted, on every app of the campaign.
func ablateExperiment(w io.Writer, c *harness.Campaign) error {
	cfg := c.Config()
	variants := []struct {
		name   string
		mutate func(*core.Config)
	}{
		{"default (calibrated)", nil},
		{"paper 1-minute stagnation", func(cc *core.Config) { cc.Stagnation = core.PaperStagnation }},
		{"orphans stay blocked", func(cc *core.Config) { cc.DropOrphans = true }},
		{"no warm-up", func(cc *core.Config) { cc.WarmUp = 1 }},
		{"no breadth guard", func(cc *core.Config) { cc.MaxSpaceFraction = 0.999 }},
		{"no score threshold", func(cc *core.Config) { cc.Analyzer.ScoreMax = 0.999 }},
	}
	fmt.Fprintf(w, "\nAblations (TaOPT duration-constrained, monkey, %d apps)\n", len(c.Apps()))
	fmt.Fprintf(w, "%-30s%12s%12s%12s\n", "variant", "coverage", "Δ vs def.", "subspaces")
	var defCov float64
	for _, v := range variants {
		var cov float64
		subs := 0
		for _, appName := range c.Apps() {
			aut, err := apps.Load(appName)
			if err != nil {
				return err
			}
			rc := harness.RunConfig{
				App:       aut,
				Tool:      "monkey",
				Setting:   harness.TaOPTDuration,
				Instances: cfg.Instances,
				Duration:  cfg.Duration,
				Seed:      cfg.Seed,
			}
			if v.mutate != nil {
				cc := core.DefaultConfig(core.DurationConstrained)
				v.mutate(&cc)
				rc.CoreConfig = &cc
			}
			res, err := harness.Run(rc)
			if err != nil {
				return err
			}
			cov += float64(res.Union.Count())
			subs += len(res.Subspaces)
		}
		if v.mutate == nil {
			defCov = cov
		}
		delta := "-"
		if v.mutate != nil && defCov > 0 {
			delta = fmt.Sprintf("%+.1f%%", 100*(cov-defCov)/defCov)
		}
		fmt.Fprintf(w, "%-30s%12.0f%12s%12d\n", v.name, cov/float64(len(c.Apps())), delta, subs)
	}
	return nil
}

var experiments = map[string]func(io.Writer, *harness.Campaign) error{
	"ablate":   ablateExperiment,
	"fig3":     report.Figure3,
	"table1":   report.Table1,
	"table2":   report.Table2,
	"fig5":     report.Figure5,
	"fig6":     report.Figure6,
	"table4":   report.Table4,
	"table5":   report.Table5,
	"table6":   report.Table6,
	"single":   report.SingleLong,
	"preserve": report.Preservation,
	"all":      report.All,
}

// defaultChaosGridFile is the scenario document the chaos experiment sweeps
// when neither -scenario nor a custom grid names one. It pins the same grid
// as report.DefaultChaosGrid (a test holds the two equal), so the report is
// byte-identical whether the grid comes from the file or the fallback.
const defaultChaosGridFile = "testdata/scenarios/chaos-grid.json"

// chaosGrid resolves the chaos experiment's variant grid: the -scenario
// campaign's faultGrid if it has one, else the checked-in default grid
// scenario, else (when that file is out of reach) the built-in grid.
func chaosGrid(sc *scenario.Campaign) ([]report.ChaosVariant, error) {
	if sc == nil || len(sc.FaultGrid) == 0 {
		raw, err := os.ReadFile(defaultChaosGridFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v; using the built-in chaos grid\n", err)
			return report.DefaultChaosGrid(), nil
		}
		g, err := scenario.CompileCampaign(raw)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", defaultChaosGridFile, err)
		}
		sc = g
	}
	if len(sc.FaultGrid) == 0 {
		return nil, fmt.Errorf("scenario %q has no faultGrid to sweep", sc.Name)
	}
	grid := make([]report.ChaosVariant, 0, len(sc.FaultGrid))
	for _, fp := range sc.FaultGrid {
		grid = append(grid, report.ChaosVariant{Label: fp.Name, Config: fp.Config})
	}
	return grid, nil
}

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment to regenerate: fig3|table1|table2|fig5|fig6|table4|table5|table6|single|preserve|chaos|ablate|all|grid")
		seeds     = flag.Int("seeds", 1, "number of seeded campaigns for -exp grid")
		scenFile  = flag.String("scenario", "", "campaign scenario file supplying the grid (apps, tools, budgets, fault plans); explicit flags override its fields")
		appsFlag  = flag.String("apps", "", "comma-separated app subset (default: all 18)")
		toolsFlag = flag.String("tools", "", "comma-separated tool subset (default: monkey,ape,wctester)")
		minutes   = flag.Int("minutes", 60, "wall-clock budget l_p in minutes")
		instances = flag.Int("instances", harness.DefaultInstances, "concurrent instances d_max")
		seed      = flag.Int64("seed", 1, "campaign seed")
		faultRate = flag.Float64("faults", 0, "instance-failure rate for fault injection (chaos derives its own 0/5/20% grid)")
		workers   = flag.Int("workers", 1, "campaign cells computed in parallel (0 = GOMAXPROCS); results are identical to -workers=1")
		binDir    = flag.String("bintrace-dir", "", "stream every computed cell's run as a binary trace file into this directory (analyze with tracetool corpus)")
		traceOut  = flag.String("trace-out", "", "write a Chrome trace-event JSON of one telemetry-enabled TaOPT run (first app × first tool) to this file")
		cpuProf   = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProf   = flag.String("memprofile", "", "write a pprof heap profile to this file")
		quiet     = flag.Bool("q", false, "suppress per-run progress lines")
	)
	flag.Parse()
	if *workers == 0 {
		*workers = runtime.GOMAXPROCS(0)
	}

	stopProfiles, err := cli.StartProfiles(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		}
	}()

	fn, ok := experiments[*exp]
	if !ok && *exp != "grid" && *exp != "chaos" {
		fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q\n", *exp)
		os.Exit(1)
	}

	setFlags := make(map[string]bool)
	flag.Visit(func(f *flag.Flag) { setFlags[f.Name] = true })

	var scCampaign *scenario.Campaign
	if *scenFile != "" {
		raw, err := os.ReadFile(*scenFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		if scCampaign, err = scenario.CompileCampaign(raw); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", *scenFile, err)
			os.Exit(1)
		}
		// To stderr with the progress lines: the document hash correlates this
		// sweep with exports and service cache keys without perturbing the
		// byte-stable stdout reports.
		fmt.Fprintf(os.Stderr, "scenario: %s hash=%s\n", *scenFile, scCampaign.Hash)
	}

	cfg := harness.CampaignConfig{
		Instances: *instances,
		Duration:  sim.Duration(*minutes) * sim.Duration(60e9),
		Seed:      *seed,
		Workers:   *workers,
	}
	if *binDir != "" {
		if err := os.MkdirAll(*binDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		cfg.BinTraceDir = *binDir
	}
	if *appsFlag != "" {
		cfg.Apps = splitList(*appsFlag)
	}
	if *toolsFlag != "" {
		cfg.Tools = splitList(*toolsFlag)
	}
	if *faultRate > 0 {
		fc := faults.DefaultConfig(*faultRate)
		cfg.Faults = &fc
	}
	settings := []harness.Setting{harness.TaOPTDuration, harness.TaOPTResource}
	if scCampaign != nil {
		// Scenario fields fill any axis the command line left alone; a flag
		// the user set explicitly always wins over the file.
		scCfg, err := harness.FromScenario(scCampaign)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		cfg.ScenarioApps = scCfg.ScenarioApps
		cfg.SampleEvery = scCfg.SampleEvery
		if !setFlags["apps"] && len(scCfg.Apps) > 0 {
			cfg.Apps = scCfg.Apps
		}
		if !setFlags["tools"] && len(scCfg.Tools) > 0 {
			cfg.Tools = scCfg.Tools
		}
		if !setFlags["instances"] && scCfg.Instances > 0 {
			cfg.Instances = scCfg.Instances
		}
		if !setFlags["minutes"] && scCfg.Duration > 0 {
			cfg.Duration = scCfg.Duration
		}
		if !setFlags["workers"] && scCfg.Workers > 0 {
			cfg.Workers = scCfg.Workers
		}
		if !setFlags["seed"] && scCfg.Seed != 0 {
			cfg.Seed = scCfg.Seed
		}
		if !setFlags["faults"] && scCfg.Faults != nil {
			cfg.Faults = scCfg.Faults
		}
		if len(scCampaign.Settings) > 0 {
			if settings, err = harness.ScenarioSettings(scCampaign); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				os.Exit(1)
			}
		}
	}
	if !*quiet {
		cfg.Progress = os.Stderr
	}

	if *exp == "chaos" {
		grid, err := chaosGrid(scCampaign)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		fn = func(w io.Writer, c *harness.Campaign) error {
			return report.ChaosGrid(w, c, grid)
		}
	}

	if *traceOut != "" {
		if err := writeChromeTrace(cfg, *traceOut); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		// When -exp wasn't given explicitly, the trace is the deliverable —
		// don't drag the user through the default full grid.
		expSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "exp" {
				expSet = true
			}
		})
		if !expSet {
			return
		}
	}

	if *exp == "grid" {
		if err := gridExperiment(os.Stdout, cfg, *seeds, settings); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		return
	}

	c := harness.NewCampaign(cfg)
	if err := fn(os.Stdout, c); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
	if *workers > 1 {
		// Pool accounting goes to stderr with the progress lines: stdout must
		// stay byte-identical to a serial run.
		st := c.FleetStats()
		fmt.Fprintf(os.Stderr, "fleet: %d cells computed, %d cache hits, %d workers, jobs per worker %v\n",
			st.CellsComputed, st.CacheHits, st.Workers, st.JobsPerWorker)
	}
}

// writeChromeTrace runs one telemetry-enabled TaOPT duration-constrained
// cell — the campaign's first app and tool — and writes its Perfetto-loadable
// trace-event JSON to path.
func writeChromeTrace(cfg harness.CampaignConfig, path string) error {
	appName := apps.Names()[0]
	if len(cfg.Apps) > 0 {
		appName = cfg.Apps[0]
	}
	tool := "monkey"
	if len(cfg.Tools) > 0 {
		tool = cfg.Tools[0]
	}
	aut, err := apps.Load(appName)
	if err != nil {
		return err
	}
	res, err := harness.Run(harness.RunConfig{
		App:       aut,
		Tool:      tool,
		Setting:   harness.TaOPTDuration,
		Instances: cfg.Instances,
		Duration:  cfg.Duration,
		Seed:      cfg.Seed,
		Faults:    cfg.Faults,
		Telemetry: true,
	})
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	tr := export.ChromeTrace(res)
	if err := tr.Write(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "trace: wrote %d events for %s/%s to %s\n", tr.Len(), appName, tool, path)
	return nil
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}
