package main

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"taopt/internal/harness"
	"taopt/internal/report"
	"taopt/internal/scenario"
	"taopt/internal/sim"
)

// readGridScenario compiles the checked-in default chaos-grid scenario.
func readGridScenario(t *testing.T) *scenario.Campaign {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join("..", "..", defaultChaosGridFile))
	if err != nil {
		t.Fatal(err)
	}
	sc, err := scenario.CompileCampaign(raw)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// TestChaosGridScenarioPinsDefault holds the checked-in grid scenario equal
// to report.DefaultChaosGrid — the documented guarantee that the chaos table
// is identical whether the grid comes from the file or the built-in
// fallback — and pins its setting names to the harness vocabulary.
func TestChaosGridScenarioPinsDefault(t *testing.T) {
	sc := readGridScenario(t)
	grid, err := chaosGrid(sc)
	if err != nil {
		t.Fatal(err)
	}
	if want := report.DefaultChaosGrid(); !reflect.DeepEqual(grid, want) {
		t.Fatalf("scenario grid diverged from the built-in grid:\nfile %+v\nbuilt-in %+v", grid, want)
	}
	settings, err := harness.ScenarioSettings(sc)
	if err != nil {
		t.Fatal(err)
	}
	if want := []harness.Setting{harness.TaOPTDuration, harness.TaOPTResource}; !reflect.DeepEqual(settings, want) {
		t.Fatalf("scenario settings %v, want %v", settings, want)
	}
}

// TestChaosScenarioReportByteForByte renders the chaos experiment twice on
// the same small campaign — once through the legacy report.Chaos entry
// point, once through report.ChaosGrid fed by the scenario file — and
// requires identical bytes.
func TestChaosScenarioReportByteForByte(t *testing.T) {
	cfg := harness.CampaignConfig{
		Apps:     []string{"Filters For Selfie"},
		Tools:    []string{"monkey"},
		Duration: 8 * sim.Duration(60e9),
		Seed:     3,
	}
	var legacy bytes.Buffer
	if err := report.Chaos(&legacy, harness.NewCampaign(cfg)); err != nil {
		t.Fatal(err)
	}
	grid, err := chaosGrid(readGridScenario(t))
	if err != nil {
		t.Fatal(err)
	}
	var scenic bytes.Buffer
	if err := report.ChaosGrid(&scenic, harness.NewCampaign(cfg), grid); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(legacy.Bytes(), scenic.Bytes()) {
		t.Fatalf("scenario-driven chaos report differs from the legacy one:\n--- legacy\n%s\n--- scenario\n%s", legacy.Bytes(), scenic.Bytes())
	}
}

// TestScenarioCampaignLowering exercises the -scenario lowering path on the
// checked-in smoke campaign: inline apps join the app axis with their
// scenario hash, and explicit fields land on the campaign config.
func TestScenarioCampaignLowering(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("..", "..", "testdata", "scenarios", "smoke-campaign.json"))
	if err != nil {
		t.Fatal(err)
	}
	sc, err := scenario.CompileCampaign(raw)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := harness.FromScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"Zedge", "Pocket Forecast"}; !reflect.DeepEqual(cfg.Apps, want) {
		t.Fatalf("apps %v, want %v", cfg.Apps, want)
	}
	sa, ok := cfg.ScenarioApps["Pocket Forecast"]
	if !ok {
		t.Fatal("inline app missing from ScenarioApps")
	}
	if sa.Hash != sc.Hash {
		t.Fatalf("inline app hash %q, want the campaign document hash %q", sa.Hash, sc.Hash)
	}
	if cfg.Instances != 4 || cfg.Seed != 7 || cfg.Duration != 10*sim.Duration(60e9) {
		t.Fatalf("lowered config %+v diverges from the file", cfg)
	}
}
