// Command tracetool analyses exported run files (cmd/taopt -export) offline:
// it rebuilds the UI transition graph, applies the preliminary study's
// conservative min-conductance partition, and reports the per-subspace
// exploration overlap and AJS statistics — the instrumentation behind
// Section 3's study, usable on any recorded run.
//
// Usage:
//
//	taopt -app Zedge -tool ape -setting baseline -export run.json
//	tracetool run.json
//	tracetool -min-coupling 0.12 run.json
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"text/tabwriter"

	"taopt/internal/cli"
	"taopt/internal/export"
	"taopt/internal/graph"
	"taopt/internal/metrics"
)

func main() {
	var (
		coupling = flag.Float64("min-coupling", graph.DefaultPartitionOptions().MaxCoupling,
			"inter-region flow threshold below which regions stay separate")
		minGroup = flag.Int("min-group", graph.DefaultPartitionOptions().MinGroupSize,
			"fold groups smaller than this into their strongest neighbour")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracetool [flags] <run.json>")
		os.Exit(2)
	}

	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	run, err := export.Read(f)
	if err != nil {
		fatalf("%v", err)
	}

	fmt.Printf("run:       %s / %s / %s (seed %d)\n", run.App, run.Tool, run.Setting, run.Seed)
	fmt.Printf("coverage:  %d methods, %d unique crashes\n", run.Coverage, run.UniqueCrashes)
	fmt.Printf("instances: %d\n", len(run.Instances))
	total := 0
	for _, inst := range run.Instances {
		total += len(inst.Events)
	}
	fmt.Printf("events:    %d transitions over %d distinct screens\n", total, len(run.Screens))

	analyse(run, graph.PartitionOptions{MaxCoupling: *coupling, MinGroupSize: *minGroup})
}

func analyse(run *export.Run, opts graph.PartitionOptions) {
	logs := run.TraceLogs()
	b := graph.NewBuilder()
	for _, l := range logs {
		b.AddTrace(l)
	}
	g := b.Graph()
	part := graph.OfflinePartition(g, opts)

	activityOf := make(map[uint64]string, len(run.Screens))
	for _, s := range run.Screens {
		activityOf[s.Signature] = s.Activity
	}

	// Per-instance visited vertex sets.
	visited := make([]map[int]bool, len(logs))
	for i, l := range logs {
		visited[i] = make(map[int]bool)
		for _, ev := range l.Events() {
			if ev.Enforced {
				continue
			}
			if v, ok := g.VertexOf(ev.To); ok {
				visited[i][v] = true
			}
		}
	}

	fmt.Printf("\noffline UI-subspace partition (%d subspaces, MC-GPP objective %.4f):\n",
		part.GroupCount(), graph.MaxPairwiseConductance(g, part))
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  SUBSPACE\tSCREENS\tEXPLORED BY\tDOMINANT ACTIVITY")
	explored := make([]map[int]bool, part.GroupCount())
	for gi, grp := range part.Groups {
		per := make(map[int]bool)
		need := 2
		if len(grp) < need {
			need = len(grp)
		}
		for i := range visited {
			count := 0
			for _, v := range grp {
				if visited[i][v] {
					count++
					if count >= need {
						break
					}
				}
			}
			if count >= need {
				per[i] = true
			}
		}
		explored[gi] = per
		fmt.Fprintf(tw, "  %d\t%d\t%d/%d instances\t%s\n",
			gi, len(grp), len(per), len(logs), dominantActivity(g, grp, activityOf))
	}
	tw.Flush()

	hist := metrics.OverlapHistogram(explored, len(logs))
	fmt.Printf("\noverlap frequency histogram (Table 1 layout):\n  ")
	for k, v := range hist {
		fmt.Printf("%d/%d:%d  ", k+1, len(logs), v)
	}
	fmt.Println()

	if n := len(run.Timeline); n > 0 && run.Timeline[n-1].AJS > 0 {
		fmt.Printf("\nfinal AJS across instances: %.3f\n", run.Timeline[n-1].AJS)
	}
}

func dominantActivity(g *graph.Graph, grp []int, activityOf map[uint64]string) string {
	counts := make(map[string]int)
	for _, v := range grp {
		counts[activityOf[uint64(g.Sigs[v])]]++
	}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if counts[keys[i]] != counts[keys[j]] {
			return counts[keys[i]] > counts[keys[j]]
		}
		return keys[i] < keys[j]
	})
	if len(keys) == 0 {
		return "-"
	}
	return keys[0]
}

var fatalf = cli.Fatalf("tracetool")
