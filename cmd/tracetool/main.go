// Command tracetool analyses recorded runs offline. It started as a
// single-run inspector — rebuild the UI transition graph from an exported
// run (cmd/taopt -export), apply the preliminary study's conservative
// min-conductance partition, and report per-subspace exploration overlap and
// AJS — and grew corpus-scale analytics over binary traces: the corpus
// subcommand streams a directory of *.taoptb files (cmd/taopt -bintrace,
// cmd/experiments -bintrace-dir) in one pass and reports crash-signature
// clusters across runs, coverage-curve percentiles across seeds, and flaky
// cells whose outcome diverges for the same scenario.
//
// Usage:
//
//	taopt -app Zedge -tool ape -setting baseline -export run.json
//	tracetool run.json
//	tracetool partition -min-coupling 0.12 run.json
//	tracetool decisions run.json
//	tracetool wirelog run.wirelog
//	tracetool wirelog a.wirelog b.wirelog
//	tracetool wirelog -replay -replay-out replayed.json run.wirelog
//	tracetool corpus traces/
//	tracetool help
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"text/tabwriter"

	"taopt/internal/cli"
	"taopt/internal/corpus"
	"taopt/internal/export"
	"taopt/internal/graph"
	"taopt/internal/metrics"
	"taopt/internal/ui"
)

// command is one tracetool subcommand: the dispatch table below is the
// single source for both routing and the help/usage listing.
type command struct {
	name    string
	args    string
	summary string
	run     func(args []string)
}

// commands is ordered; help prints it as-is. The help entry is appended in
// init because its closure refers back to this table via usage.
var commands = []command{
	{"partition", "[flags] <run.json>", "offline UI-subspace partition of an exported run (default command)", partitionMain},
	{"decisions", "<run.json>", "replay the exported decision log against the run's recorded outcome", decisionsMain},
	{"wirelog", "[flags] <log> [log2]", "dump, diff or replay recorded coordination message logs", wirelogMain},
	{"corpus", "<dir>", "cross-run analytics over a directory of binary traces (*" + corpus.Ext + ")", corpusMain},
}

func init() {
	commands = append(commands, command{"help", "", "show this table", func([]string) {
		usage(os.Stdout)
		os.Exit(0)
	}})
}

func usage(w io.Writer) {
	fmt.Fprintln(w, "usage: tracetool <command> [flags] <args>")
	fmt.Fprintln(w)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	for _, c := range commands {
		fmt.Fprintf(tw, "  %s %s\t%s\n", c.name, c.args, c.summary)
	}
	tw.Flush()
	fmt.Fprintln(w)
	fmt.Fprintln(w, "A bare <run.json> argument runs the partition command.")
}

func main() {
	args := os.Args[1:]
	if len(args) == 0 {
		usage(os.Stderr)
		os.Exit(2)
	}
	for _, c := range commands {
		if c.name == args[0] {
			c.run(args[1:])
			return
		}
	}
	// Bare run.json (possibly preceded by partition flags) keeps working.
	partitionMain(args)
}

// readRun opens and decodes one exported run file.
func readRun(path string) *export.Run {
	f, err := os.Open(path)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	run, err := export.Read(f)
	if err != nil {
		fatalf("%v", err)
	}
	return run
}

func partitionMain(args []string) {
	fs := flag.NewFlagSet("tracetool partition", flag.ExitOnError)
	coupling := fs.Float64("min-coupling", graph.DefaultPartitionOptions().MaxCoupling,
		"inter-region flow threshold below which regions stay separate")
	minGroup := fs.Int("min-group", graph.DefaultPartitionOptions().MinGroupSize,
		"fold groups smaller than this into their strongest neighbour")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fatalf("usage: tracetool partition [flags] <run.json> (tracetool help lists all commands)")
	}
	run := readRun(fs.Arg(0))

	fmt.Printf("run:       %s / %s / %s (seed %d)\n", run.App, run.Tool, run.Setting, run.Seed)
	fmt.Printf("coverage:  %d methods, %d unique crashes\n", run.Coverage, run.UniqueCrashes)
	fmt.Printf("instances: %d\n", len(run.Instances))
	total := 0
	for _, inst := range run.Instances {
		total += len(inst.Events)
	}
	fmt.Printf("events:    %d transitions over %d distinct screens\n", total, len(run.Screens))

	analyse(run, graph.PartitionOptions{MaxCoupling: *coupling, MinGroupSize: *minGroup})
}

func decisionsMain(args []string) {
	fs := flag.NewFlagSet("tracetool decisions", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		fatalf("usage: tracetool decisions <run.json>")
	}
	if !checkDecisions(readRun(fs.Arg(0))) {
		os.Exit(1)
	}
}

func corpusMain(args []string) {
	fs := flag.NewFlagSet("tracetool corpus", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		fatalf("usage: tracetool corpus <dir> (a directory of *%s binary traces)", corpus.Ext)
	}
	stats, err := corpus.ScanDir(fs.Arg(0))
	if err != nil {
		fatalf("%v", err)
	}
	if err := corpus.Render(os.Stdout, stats); err != nil {
		fatalf("%v", err)
	}
}

func analyse(run *export.Run, opts graph.PartitionOptions) {
	logs := run.TraceLogs()
	b := graph.NewBuilder()
	for _, l := range logs {
		b.AddTrace(l)
	}
	g := b.Graph()
	part := graph.OfflinePartition(g, opts)

	activityOf := make(map[uint64]string, len(run.Screens))
	for _, s := range run.Screens {
		activityOf[s.Signature] = s.Activity
	}

	// Per-instance visited vertex sets.
	visited := make([]map[int]bool, len(logs))
	for i, l := range logs {
		visited[i] = make(map[int]bool)
		for _, ev := range l.Events() {
			if ev.Enforced {
				continue
			}
			if v, ok := g.VertexOf(ev.To); ok {
				visited[i][v] = true
			}
		}
	}

	fmt.Printf("\noffline UI-subspace partition (%d subspaces, MC-GPP objective %.4f):\n",
		part.GroupCount(), graph.MaxPairwiseConductance(g, part))
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  SUBSPACE\tSCREENS\tEXPLORED BY\tDOMINANT ACTIVITY")
	explored := make([]map[int]bool, part.GroupCount())
	for gi, grp := range part.Groups {
		per := make(map[int]bool)
		need := 2
		if len(grp) < need {
			need = len(grp)
		}
		for i := range visited {
			count := 0
			for _, v := range grp {
				if visited[i][v] {
					count++
					if count >= need {
						break
					}
				}
			}
			if count >= need {
				per[i] = true
			}
		}
		explored[gi] = per
		fmt.Fprintf(tw, "  %d\t%d\t%d/%d instances\t%s\n",
			gi, len(grp), len(per), len(logs), dominantActivity(g, grp, activityOf))
	}
	tw.Flush()

	hist := metrics.OverlapHistogram(explored, len(logs))
	fmt.Printf("\noverlap frequency histogram (Table 1 layout):\n  ")
	for k, v := range hist {
		fmt.Printf("%d/%d:%d  ", k+1, len(logs), v)
	}
	fmt.Println()

	if n := len(run.Timeline); n > 0 && run.Timeline[n-1].AJS > 0 {
		fmt.Printf("\nfinal AJS across instances: %.3f\n", run.Timeline[n-1].AJS)
	}
}

// checkDecisions replays the exported decision log and cross-checks it
// against the run's recorded outcome: timestamps must be non-decreasing
// (virtual time never runs backwards), every referenced instance must exist,
// each accepted subspace in the log must match an exported subspace (same
// entry, no shrinking member count — later merges only grow it), and every
// accepted entry screen must be a vertex of the transition graph rebuilt
// from the exported traces. Returns false (after printing each mismatch)
// when any check fails.
func checkDecisions(run *export.Run) bool {
	if run.Telemetry == nil {
		fatalf("run carries no telemetry block (re-export with taopt -telemetry -export)")
	}
	decisions := run.Telemetry.Decisions
	fmt.Printf("run:       %s / %s / %s (seed %d)\n", run.App, run.Tool, run.Setting, run.Seed)
	fmt.Printf("decisions: %d logged\n", len(decisions))

	byKind := make(map[string]int)
	for _, d := range decisions {
		byKind[d.Kind]++
	}
	kinds := make([]string, 0, len(byKind))
	for k := range byKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	for _, k := range kinds {
		fmt.Fprintf(tw, "  %s\t%d\n", k, byKind[k])
	}
	tw.Flush()

	instances := make(map[int]bool, len(run.Instances))
	for _, inst := range run.Instances {
		instances[inst.ID] = true
	}
	subspaces := make(map[int]export.Subspace, len(run.Subspaces))
	for _, sub := range run.Subspaces {
		subspaces[sub.ID] = sub
	}
	b := graph.NewBuilder()
	for _, l := range run.TraceLogs() {
		b.AddTrace(l)
	}
	g := b.Graph()

	ok := true
	fail := func(format string, args ...any) {
		ok = false
		fmt.Printf("MISMATCH: "+format+"\n", args...)
	}

	var lastAt int64
	accepts := 0
	for i, d := range decisions {
		if d.AtNS < lastAt {
			fail("decision %d (%s) at %dns precedes its predecessor at %dns", i, d.Kind, d.AtNS, lastAt)
		}
		lastAt = d.AtNS
		if d.Instance >= 0 && !instances[d.Instance] {
			fail("decision %d (%s) references unknown instance %d", i, d.Kind, d.Instance)
		}
		if d.Kind != "accept" {
			continue
		}
		accepts++
		sub, found := subspaces[d.Sub]
		if !found {
			fail("accepted subspace %d is not in the export", d.Sub)
			continue
		}
		if sub.Entry != d.Entry {
			fail("subspace %d entry: decision log says %d, export says %d", d.Sub, d.Entry, sub.Entry)
		}
		if len(sub.Members) < d.Members {
			fail("subspace %d shrank: accepted with %d members, exported with %d (merges only grow it)",
				d.Sub, d.Members, len(sub.Members))
		}
		if _, inGraph := g.VertexOf(ui.Signature(d.Entry)); !inGraph {
			fail("subspace %d entry %d is not a vertex of the rebuilt transition graph", d.Sub, d.Entry)
		}
	}
	if accepts != len(run.Subspaces) {
		fail("decision log accepts %d subspaces, export records %d", accepts, len(run.Subspaces))
	}

	if ok {
		fmt.Printf("replay:    OK — %d accepts match %d exported subspaces, timestamps monotone, all instances known\n",
			accepts, len(run.Subspaces))
	}
	return ok
}

func dominantActivity(g *graph.Graph, grp []int, activityOf map[uint64]string) string {
	counts := make(map[string]int)
	for _, v := range grp {
		counts[activityOf[uint64(g.Sigs[v])]]++
	}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if counts[keys[i]] != counts[keys[j]] {
			return counts[keys[i]] > counts[keys[j]]
		}
		return keys[i] < keys[j]
	})
	if len(keys) == 0 {
		return "-"
	}
	return keys[0]
}

var fatalf = cli.Fatalf("tracetool")
