package main

import (
	"crypto/sha256"
	"encoding/hex"
	"flag"
	"fmt"
	"os"

	"taopt/internal/bus/wire"
	"taopt/internal/export"
)

// wirelogMain implements the wirelog subcommand: dump a recorded
// coordination message log, diff two logs frame by frame, or replay a log
// into the run's export without re-running any tool decision logic.
//
//	tracetool wirelog run.wirelog
//	tracetool wirelog a.wirelog b.wirelog
//	tracetool wirelog -replay run.wirelog
//	tracetool wirelog -replay-out run.json run.wirelog
func wirelogMain(args []string) {
	fs := flag.NewFlagSet("tracetool wirelog", flag.ExitOnError)
	replay := fs.Bool("replay", false, "replay the log and print the SHA-256 of the reproduced export")
	replayOut := fs.String("replay-out", "", "replay the log and write the reproduced export JSON to this file")
	fs.Parse(args)

	switch {
	case *replay || *replayOut != "":
		if fs.NArg() != 1 {
			fatalf("usage: tracetool wirelog [-replay] [-replay-out run.json] <run.wirelog>")
		}
		replayLog(fs.Arg(0), *replayOut)
	case fs.NArg() == 1:
		dumpLog(fs.Arg(0))
	case fs.NArg() == 2:
		diffLogs(fs.Arg(0), fs.Arg(1))
	default:
		fatalf("usage: tracetool wirelog [-replay] [-replay-out run.json] <run.wirelog> [other.wirelog]")
	}
}

func readWireLog(path string) *wire.Log {
	f, err := os.Open(path)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	log, err := wire.ReadLog(f)
	if err != nil {
		fatalf("%s: %v", path, err)
	}
	return log
}

func dumpLog(path string) {
	log := readWireLog(path)
	h := log.Header
	fmt.Printf("wire log:  %s\n", path)
	fmt.Printf("run:       %s / %s / %s (seed %d, %d instances, %d devices)\n",
		h.App, h.Tool, h.Setting, h.Seed, h.Instances, h.MaxDevices)
	fmt.Printf("faults:    %v  telemetry: %v  core-override: %v\n", h.FaultsEnabled, h.Telemetry, h.CoreOverride)
	fmt.Printf("frames:    %d\n\n", len(log.Frames))
	for _, f := range log.Frames {
		fmt.Println(f)
	}
}

func diffLogs(pathA, pathB string) {
	a, b := readWireLog(pathA), readWireLog(pathB)
	if a.Header != b.Header {
		fmt.Printf("headers differ:\n- %+v\n+ %+v\n", a.Header, b.Header)
		os.Exit(1)
	}
	n := len(a.Frames)
	if len(b.Frames) < n {
		n = len(b.Frames)
	}
	for i := 0; i < n; i++ {
		if a.Frames[i].String() != b.Frames[i].String() {
			fmt.Printf("first divergence at frame %d:\n- %s\n+ %s\n", i, a.Frames[i], b.Frames[i])
			os.Exit(1)
		}
	}
	if len(a.Frames) != len(b.Frames) {
		fmt.Printf("logs agree for %d frames, then lengths differ: %d vs %d\n", n, len(a.Frames), len(b.Frames))
		os.Exit(1)
	}
	fmt.Printf("logs identical: %d frames\n", n)
}

func replayLog(path, outPath string) {
	f, err := os.Open(path)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	run, decisions, err := export.ReplayWireLog(f)
	if err != nil {
		fatalf("%v", err)
	}

	sum := sha256.New()
	if err := run.Write(sum); err != nil {
		fatalf("serialising replayed export: %v", err)
	}
	fmt.Printf("replayed:  %s / %s / %s (seed %d)\n", run.App, run.Tool, run.Setting, run.Seed)
	fmt.Printf("coverage:  %d methods, %d unique crashes, %d instances, %d subspaces\n",
		run.Coverage, run.UniqueCrashes, len(run.Instances), len(run.Subspaces))
	fmt.Printf("decisions: %d re-derived\n", decisions.Len())
	fmt.Printf("export sha256: %s\n", hex.EncodeToString(sum.Sum(nil)))

	if outPath != "" {
		out, err := os.Create(outPath)
		if err != nil {
			fatalf("%v", err)
		}
		if err := run.Write(out); err != nil {
			fatalf("writing replayed export: %v", err)
		}
		if err := out.Close(); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("replayed export written to %s\n", outPath)
	}
}
