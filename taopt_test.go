package taopt

import (
	"testing"
)

// TestPublicAPIQuickRun exercises the facade the way a downstream user
// would: load an app, run a short TaOPT campaign, read the results.
func TestPublicAPIQuickRun(t *testing.T) {
	app := LoadApp("Filters For Selfie")
	res, err := Run(RunConfig{
		App:      app,
		Tool:     "monkey",
		Setting:  TaOPTDuration,
		Duration: 10 * Minute,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Union.Count() == 0 {
		t.Fatal("no coverage")
	}
	if res.WallUsed != 10*Minute {
		t.Fatalf("wall = %v", res.WallUsed)
	}
}

func TestPublicAPICatalog(t *testing.T) {
	if got := len(CatalogNames()); got != 18 {
		t.Fatalf("catalog = %d apps", got)
	}
	if got := len(ToolNames()); got != 3 {
		t.Fatalf("tools = %d", got)
	}
}

func TestPublicAPIGenerate(t *testing.T) {
	spec := NewAppSpec("MyApp", 5)
	spec.Subspaces = 4
	app := GenerateApp(spec)
	if app.Name != "MyApp" || app.Subspaces != 5 {
		t.Fatalf("generated app: %s, %d subspaces", app.Name, app.Subspaces)
	}
	demo := MotivatingExample()
	if demo.Name != "ShopDemo" {
		t.Fatal("motivating example missing")
	}
}

func TestPublicAPIBaselineVsTaOPTOverlap(t *testing.T) {
	// The headline claim at demo scale: TaOPT reduces UI overlap.
	app := LoadApp("Filters For Selfie")
	base, err := Run(RunConfig{App: app, Tool: "monkey", Setting: Baseline, Duration: 15 * Minute, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := Run(RunConfig{App: app, Tool: "monkey", Setting: TaOPTDuration, Duration: 15 * Minute, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if opt.UIOccurrenceAverage() >= base.UIOccurrenceAverage() {
		t.Fatalf("TaOPT did not reduce UI overlap: %.1f vs %.1f",
			opt.UIOccurrenceAverage(), base.UIOccurrenceAverage())
	}
}

func TestPublicAPICoordinatorConfig(t *testing.T) {
	cfg := DefaultCoordinatorConfig(DurationConstrained)
	if cfg.Mode != DurationConstrained {
		t.Fatal("mode")
	}
	cfg.Stagnation = 20 * Minute
	app := LoadApp("Filters For Selfie")
	if _, err := Run(RunConfig{
		App: app, Tool: "ape", Setting: TaOPTDuration,
		Duration: 5 * Minute, Seed: 3, CoreConfig: &cfg,
	}); err != nil {
		t.Fatal(err)
	}
}
