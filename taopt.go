// Package taopt is a tool-agnostic optimizer for parallelized automated
// mobile UI testing, reproducing "TaOPT: Tool-Agnostic Optimization of
// Parallelized Automated Mobile UI Testing" (ASPLOS 2025).
//
// TaOPT watches the UI transition traces of any automated UI testing tool
// running on multiple testing instances, identifies loosely coupled UI
// subspaces of the app under test online (Algorithm 1, "FindSpace"), and
// dedicates each subspace to one instance by disabling its entrypoints
// everywhere else — no changes to the tool or the app.
//
// The package bundles everything needed to run end to end on a laptop:
// synthetic Android-like apps (generated or hand-built), simulated testing
// instances on a deterministic virtual clock, reimplementations of the
// Monkey / Ape / WCTester exploration strategies, the TaOPT coordinator in
// both its duration-constrained and resource-constrained modes, and the
// measurement harness that regenerates the paper's tables and figures.
//
// Quickstart:
//
//	app := taopt.LoadApp("AccuWeather")
//	res, err := taopt.Run(taopt.RunConfig{
//		App:     app,
//		Tool:    "monkey",
//		Setting: taopt.TaOPTDuration,
//	})
//	fmt.Println(res.Union.Count(), "methods covered")
//
// See examples/ for runnable programs and DESIGN.md for the system map.
package taopt

import (
	"taopt/internal/app"
	"taopt/internal/apps"
	"taopt/internal/bus"
	"taopt/internal/core"
	"taopt/internal/coverage"
	"taopt/internal/crash"
	"taopt/internal/faults"
	"taopt/internal/harness"
	"taopt/internal/metrics"
	"taopt/internal/obs"
	"taopt/internal/sim"
	"taopt/internal/tools"
	"taopt/internal/ui"
)

// Core run types. These are aliases of the implementing packages' types, so
// everything documented there applies verbatim.
type (
	// App is a synthetic App Under Test: a stochastic UI transition graph
	// with activities, methods and planted crashes.
	App = app.App
	// AppSpec parameterises the synthetic app generator.
	AppSpec = app.Spec
	// RunConfig describes one testing campaign run.
	RunConfig = harness.RunConfig
	// RunResult is a completed run's measurements.
	RunResult = harness.RunResult
	// InstanceResult is one testing instance's outcome within a run.
	InstanceResult = harness.InstanceResult
	// Setting selects the parallelization strategy of a run.
	Setting = harness.Setting
	// Subspace is a loosely coupled UI subspace identified by TaOPT.
	Subspace = core.Subspace
	// CoordinatorConfig tunes TaOPT's analyzer and coordinator (ablations).
	CoordinatorConfig = core.Config
	// Campaign caches runs across a grid of (app, tool, setting) cells.
	Campaign = harness.Campaign
	// CampaignConfig parameterises a Campaign.
	CampaignConfig = harness.CampaignConfig
	// CoverageSet is a covered-method set.
	CoverageSet = coverage.Set
	// CrashReport is one deduplicated crash observation.
	CrashReport = crash.Report
	// Timeline is a run's sampled progress (wall time, machine time,
	// coverage, crashes, AJS).
	Timeline = metrics.Timeline
	// FaultConfig parameterises deterministic device-farm fault injection
	// (chaos campaigns); pass one via RunConfig.Faults or
	// CampaignConfig.Faults.
	FaultConfig = faults.Config
	// FaultStats counts the faults a chaos fault plan drew; runs report the
	// transport-level view instead (see TransportStats).
	FaultStats = faults.Stats
	// TransportStats is a run's coordination-transport accounting: trace
	// events published and delivered, commands carried, and injected faults
	// (RunResult.Transport).
	TransportStats = bus.Stats
	// Telemetry is a run's observability bundle — the coordinator's decision
	// log and the metrics registry — collected when RunConfig.Telemetry is
	// set (RunResult.Telemetry).
	Telemetry = obs.Telemetry
	// Decision is one typed decision-log entry (candidate verdicts, subspace
	// lifecycle, health verdicts, allocation backoff).
	Decision = obs.Decision
	// Duration is virtual time.
	Duration = sim.Duration
	// ScreenSignature identifies an abstract UI screen.
	ScreenSignature = ui.Signature
	// Transport selects the coordination-transport implementation of a run
	// (RunConfig.Transport / CampaignConfig.Transport).
	Transport = harness.Transport
)

// Run settings.
const (
	// Baseline runs uncoordinated instances differing only in random seeds.
	Baseline = harness.BaselineParallel
	// TaOPTDuration keeps d_max instances busy for the whole wall-clock
	// budget, coordinated by TaOPT.
	TaOPTDuration = harness.TaOPTDuration
	// TaOPTResource grows from one instance within a machine-time budget,
	// coordinated by TaOPT.
	TaOPTResource = harness.TaOPTResource
	// ActivityPartition is the activity-granularity baseline (ParaAim-like).
	ActivityPartition = harness.ActivityPartition
	// SingleLong runs one instance for the whole machine-time budget.
	SingleLong = harness.SingleLong
)

// Coordinator modes (used in CoordinatorConfig).
const (
	DurationConstrained = core.DurationConstrained
	ResourceConstrained = core.ResourceConstrained
)

// Coordination transports (used in RunConfig.Transport). Either produces
// byte-identical run exports; TransportWire additionally forces the whole
// coordination protocol through the internal/bus/wire framing.
const (
	TransportInline = harness.TransportInline
	TransportWire   = harness.TransportWire
)

// Time helpers for configs.
const (
	Second = sim.Duration(1e9)
	Minute = 60 * Second
	Hour   = 60 * Minute
)

// Run executes one campaign run on virtual time and returns its
// measurements.
func Run(cfg RunConfig) (*RunResult, error) { return harness.Run(cfg) }

// NewCampaign returns a run cache over a grid of (app, tool, setting) cells;
// use it with the internal/report renderers via cmd/experiments, or directly
// for custom sweeps.
func NewCampaign(cfg CampaignConfig) *Campaign { return harness.NewCampaign(cfg) }

// GenerateApp builds a synthetic app from a spec. The same spec (including
// Seed) always generates the identical app.
func GenerateApp(spec AppSpec) *App { return app.Generate(spec) }

// NewAppSpec returns a mid-size app spec to customise.
func NewAppSpec(name string, seed int64) AppSpec { return app.DefaultSpec(name, seed) }

// MotivatingExample returns the hand-built online-shopping app of the
// paper's Figure 2.
func MotivatingExample() *App { return app.MotivatingExample() }

// LoadApp returns one of the 18 evaluation apps by its Table 3 name
// (e.g. "Zedge"). It panics on unknown names; use CatalogNames to list them.
func LoadApp(name string) *App { return apps.MustLoad(name) }

// CatalogNames lists the 18 evaluation apps.
func CatalogNames() []string { return apps.Names() }

// ToolNames lists the available testing tools ("ape", "monkey", "wctester").
func ToolNames() []string { return tools.Names() }

// DefaultCoordinatorConfig returns the paper's coordinator configuration for
// a mode; override fields for ablations and pass it via RunConfig.CoreConfig.
func DefaultCoordinatorConfig(mode core.Mode) CoordinatorConfig {
	return core.DefaultConfig(mode)
}

// DefaultFaultConfig returns a calibrated fault mix for the given
// instance-failure rate (deaths, hangs, allocation outages, trace loss and
// delay); see internal/faults for the knobs.
func DefaultFaultConfig(failureRate float64) FaultConfig {
	return faults.DefaultConfig(failureRate)
}

// Jaccard returns the Jaccard similarity of two covered-method sets.
func Jaccard(a, b *CoverageSet) float64 { return metrics.Jaccard(a, b) }

// AJS returns the Average Jaccard Similarity across instances' sets (Eq. 1).
func AJS(sets []*CoverageSet) float64 { return metrics.AJS(sets) }
