package taopt

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"taopt/internal/export"
)

// The transport conformance contract: a run's export is a property of the
// configuration alone, not of how the coordination protocol travels. Every
// cell below runs three ways — over the Inline transport, over the wire
// framing with the full message log recorded, and replayed from that log
// with no farm and no testing tools — and all three must serialise to the
// same bytes.

type conformanceCell struct {
	name    string
	app     string
	tool    string
	setting Setting
	faults  *FaultConfig
}

// chaosFaults is a fault mix hitting every injection path, including the
// command-loss channel that defaults to zero.
func chaosFaults(cmdLoss float64) *FaultConfig {
	fc := DefaultFaultConfig(0.25)
	fc.MinLife = 1 * Minute
	fc.MaxLife = 5 * Minute
	fc.CmdLossRate = cmdLoss
	return &fc
}

func conformanceCells(short bool) []conformanceCell {
	cells := []conformanceCell{
		{"taopt-duration/fault-free", "Filters For Selfie", "monkey", TaOPTDuration, nil},
		{"taopt-duration/chaos", "Filters For Selfie", "monkey", TaOPTDuration, chaosFaults(0)},
		{"taopt-duration/cmdloss", "Filters For Selfie", "ape", TaOPTDuration, chaosFaults(0.35)},
	}
	if !short {
		cells = append(cells,
			conformanceCell{"taopt-resource/chaos", "Marvel Comics", "wctester", TaOPTResource, chaosFaults(0.2)},
			conformanceCell{"baseline/chaos", "Sketch", "monkey", Baseline, chaosFaults(0.2)},
			conformanceCell{"activity-partition/cmdloss", "Sketch", "ape", ActivityPartition, chaosFaults(0.35)},
		)
	}
	return cells
}

func (c conformanceCell) config(transport Transport) RunConfig {
	return RunConfig{
		App:       LoadApp(c.app),
		Tool:      c.tool,
		Setting:   c.setting,
		Duration:  8 * Minute,
		Seed:      23,
		Faults:    c.faults,
		Transport: transport,
	}
}

func exportBytes(t *testing.T, res *RunResult) []byte {
	t.Helper()
	run := export.FromResult(res)
	var buf bytes.Buffer
	if err := run.Write(&buf); err != nil {
		t.Fatalf("serialising export: %v", err)
	}
	return buf.Bytes()
}

// saveWireLog keeps a failing (or, under TAOPT_WIRELOG_DIR, every) cell's
// wire log on disk so CI can upload it as an artifact.
func saveWireLog(t *testing.T, name string, log []byte) {
	dir := os.Getenv("TAOPT_WIRELOG_DIR")
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Logf("keeping wire log: %v", err)
		return
	}
	path := filepath.Join(dir, strings.ReplaceAll(name, "/", "_")+".wirelog")
	if err := os.WriteFile(path, log, 0o644); err != nil {
		t.Logf("keeping wire log: %v", err)
		return
	}
	t.Logf("wire log kept at %s", path)
}

// TestTransportConformance asserts the inline run, the wire run and the
// wire-log replay of each conformance cell export byte-identically.
func TestTransportConformance(t *testing.T) {
	for _, cell := range conformanceCells(testing.Short()) {
		cell := cell
		t.Run(cell.name, func(t *testing.T) {
			inlineRes, err := Run(cell.config(TransportInline))
			if err != nil {
				t.Fatalf("inline run: %v", err)
			}
			inlineJSON := exportBytes(t, inlineRes)

			var log bytes.Buffer
			cfg := cell.config(TransportWire)
			cfg.WireLog = &log
			wireRes, err := Run(cfg)
			if err != nil {
				t.Fatalf("wire run: %v", err)
			}
			saveWireLog(t, cell.name, log.Bytes())
			wireJSON := exportBytes(t, wireRes)
			if !bytes.Equal(inlineJSON, wireJSON) {
				t.Fatalf("wire transport changed the export:\n%s", firstDiff(inlineJSON, wireJSON))
			}
			if wireRes.Wire == nil || wireRes.Wire.FramesUp == 0 || wireRes.Wire.FramesDown == 0 {
				t.Fatalf("wire run reports no frame traffic: %+v", wireRes.Wire)
			}

			replayed, _, err := export.ReplayWireLog(bytes.NewReader(log.Bytes()))
			if err != nil {
				t.Fatalf("replaying wire log: %v", err)
			}
			var replayJSON bytes.Buffer
			if err := replayed.Write(&replayJSON); err != nil {
				t.Fatalf("serialising replayed export: %v", err)
			}
			if !bytes.Equal(inlineJSON, replayJSON.Bytes()) {
				t.Fatalf("replay diverged from the live export:\n%s", firstDiff(inlineJSON, replayJSON.Bytes()))
			}
		})
	}
}

// TestWireReplayHashStable pins the replayed export to the live export by
// hash as well — the form the acceptance check and CI artifacts use.
func TestWireReplayHashStable(t *testing.T) {
	cell := conformanceCells(true)[1] // taopt-duration/chaos
	var log bytes.Buffer
	cfg := cell.config(TransportWire)
	cfg.WireLog = &log
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("wire run: %v", err)
	}
	live := sha256.Sum256(exportBytes(t, res))

	replayed, _, err := export.ReplayWireLog(&log)
	if err != nil {
		t.Fatalf("replaying wire log: %v", err)
	}
	var buf bytes.Buffer
	if err := replayed.Write(&buf); err != nil {
		t.Fatalf("serialising replayed export: %v", err)
	}
	got := sha256.Sum256(buf.Bytes())
	if got != live {
		t.Fatalf("replayed export hash %s != live %s",
			hex.EncodeToString(got[:8]), hex.EncodeToString(live[:8]))
	}
}

// TestWireReplayReproducesDecisionLog asserts the replayed coordinator makes
// the exact decision sequence of the live one — the log carries enough to
// re-derive not just the export but the reasoning behind it.
func TestWireReplayReproducesDecisionLog(t *testing.T) {
	cell := conformanceCells(true)[2] // cmdloss chaos, exercises retry decisions
	var log bytes.Buffer
	cfg := cell.config(TransportWire)
	cfg.WireLog = &log
	cfg.Telemetry = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("wire run: %v", err)
	}
	var live bytes.Buffer
	if err := res.Telemetry.DecisionLog().WriteJSONL(&live); err != nil {
		t.Fatalf("serialising live decision log: %v", err)
	}

	_, decisions, err := export.ReplayWireLog(&log)
	if err != nil {
		t.Fatalf("replaying wire log: %v", err)
	}
	var replayed bytes.Buffer
	if err := decisions.WriteJSONL(&replayed); err != nil {
		t.Fatalf("serialising replayed decision log: %v", err)
	}
	if live.Len() == 0 {
		t.Fatal("live run made no decisions; cell is not exercising the coordinator")
	}
	if !bytes.Equal(live.Bytes(), replayed.Bytes()) {
		t.Fatalf("replayed decision log diverged:\n%s", firstDiff(live.Bytes(), replayed.Bytes()))
	}
}

// TestRecorderComposesOverInline asserts the record/replay path is
// transport-agnostic: a wire log captured over the Inline transport replays
// to the same export too.
func TestRecorderComposesOverInline(t *testing.T) {
	cell := conformanceCells(true)[1]
	var log bytes.Buffer
	cfg := cell.config(TransportInline)
	cfg.WireLog = &log
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("inline run: %v", err)
	}
	live := exportBytes(t, res)

	replayed, _, err := export.ReplayWireLog(&log)
	if err != nil {
		t.Fatalf("replaying wire log: %v", err)
	}
	var buf bytes.Buffer
	if err := replayed.Write(&buf); err != nil {
		t.Fatalf("serialising replayed export: %v", err)
	}
	if !bytes.Equal(live, buf.Bytes()) {
		t.Fatalf("inline-recorded replay diverged:\n%s", firstDiff(live, buf.Bytes()))
	}
}

// firstDiff renders the first differing line of two texts for debugging.
func firstDiff(a, b []byte) string {
	al := strings.Split(string(a), "\n")
	bl := strings.Split(string(b), "\n")
	n := len(al)
	if len(bl) < n {
		n = len(bl)
	}
	for i := 0; i < n; i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d:\n-%s\n+%s", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("lengths differ: %d vs %d lines", len(al), len(bl))
}
